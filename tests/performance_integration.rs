//! Performance integration tests: the qualitative performance claims of
//! Figures 5/6/11 and §8.1, at reduced scale.
//!
//! Runs cover at least one full (scaled) refresh window so that per-epoch
//! statistics — swaps per epoch, hot-row counts — are meaningful. Hot
//! workloads use the higher-MPKI Table 3 entries so the instruction budget
//! stays small.

use rrs::experiments::{ExperimentConfig, MitigationKind};
use rrs::workloads::catalog::{spec_by_name, Workload};
use rrs::workloads::AttackKind;

/// Scale 1/200: T_RH = 24, T_RRS = 4, epoch = 320 µs (1 M cycles). The
/// 3 M-instruction budget covers ≈1.5 epochs at the calibration IPC.
/// (T_RRS must stay above the ~2-activation noise floor of interrupted
/// streaming visits; see the generator's calibration notes.)
fn cfg() -> ExperimentConfig {
    let mut c = ExperimentConfig::default()
        .with_scale(200)
        .with_instructions(3_000_000);
    c.cores = 2;
    c
}

fn workload(name: &str) -> Workload {
    Workload::Single(spec_by_name(name).expect("catalog workload"))
}

#[test]
fn rrs_overhead_is_small_on_a_cold_workload() {
    // Figure 6: workloads without hot rows see essentially no slowdown.
    let c = cfg();
    let w = workload("libquantum");
    let base = c.run_workload(&w, MitigationKind::None);
    let rrs = c.run_workload(&w, MitigationKind::Rrs);
    // At full scale cold workloads swap exactly zero times (no row comes
    // near 800 activations). At this aggressive scale (T_RRS = 2) a single
    // incidental re-activation counts, so assert the rate is negligible
    // rather than exactly zero: well under 0.5% of accesses.
    let accesses = rrs.stats.reads + rrs.stats.writes;
    assert!(
        rrs.stats.swaps * 200 < accesses,
        "cold workload swap rate too high: {} swaps / {} accesses",
        rrs.stats.swaps,
        accesses
    );
    let norm = rrs.normalized_to(&base);
    assert!(
        norm > 0.95,
        "cold-workload slowdown too large: normalized = {norm}"
    );
}

#[test]
fn hot_workload_triggers_swaps_but_modest_slowdown() {
    // Figures 5/6: hot-row workloads swap, yet stay close to baseline.
    let c = cfg();
    let w = workload("sphinx");
    let base = c.run_workload(&w, MitigationKind::None);
    let rrs = c.run_workload(&w, MitigationKind::Rrs);
    assert!(rrs.stats.swaps > 0, "hot workload must trigger swaps");
    let norm = rrs.normalized_to(&base);
    assert!(
        norm > 0.85,
        "hot-workload slowdown too large: normalized = {norm}"
    );
}

#[test]
fn hot_rows_statistic_reflects_calibration() {
    // Table 3: the generator must produce rows crossing the scaled ACT
    // threshold for hot workloads and none for cold ones.
    let c = cfg();
    let hot = c.run_workload(&workload("sphinx"), MitigationKind::None);
    assert!(
        hot.stats.epoch_hot_row_history.iter().any(|&n| n > 10),
        "sphinx must produce ACT-800+-equivalent rows: {:?}",
        hot.stats.epoch_hot_row_history
    );
    let cold = c.run_workload(&workload("povray"), MitigationKind::None);
    let max_cold = cold
        .stats
        .epoch_hot_row_history
        .iter()
        .max()
        .copied()
        .unwrap_or(0);
    let max_hot = hot
        .stats
        .epoch_hot_row_history
        .iter()
        .max()
        .copied()
        .unwrap_or(0);
    // At T_RRS = 2 a single incidental re-activation registers, so cold
    // workloads carry a small noise floor; the hot/cold separation must
    // still be decisive (at full scale cold is exactly zero).
    assert!(
        max_cold <= 32,
        "povray should have (almost) no hot rows, got {max_cold}"
    );
    assert!(
        max_hot > 4 * max_cold.max(1),
        "hot/cold separation lost: sphinx {max_hot} vs povray {max_cold}"
    );
}

#[test]
fn blockhammer_hurts_hot_workloads_more_than_rrs() {
    // Figure 11's tail: hot-row workloads suffer under BlockHammer's
    // blacklist delays but not under RRS.
    let c = cfg();
    let w = workload("sphinx");
    let base = c.run_workload(&w, MitigationKind::None);
    let rrs = c.run_workload(&w, MitigationKind::Rrs);
    let bh = c.run_workload(&w, MitigationKind::BlockHammer512);
    let rrs_norm = rrs.normalized_to(&base);
    let bh_norm = bh.normalized_to(&base);
    assert!(
        bh.stats.mitigation_delay_cycles > 0,
        "BlockHammer should have throttled sphinx's hot rows"
    );
    assert!(
        rrs_norm > bh_norm,
        "RRS ({rrs_norm}) should outperform BlockHammer ({bh_norm}) on hot workloads"
    );
}

#[test]
fn dos_attack_slows_blockhammer_far_more_than_rrs() {
    // §8.1: continuous same-row activations cost BlockHammer ~200× (each
    // ACT delayed tens of µs) but RRS only ~2× (one swap per T_RRS ACTs).
    let c = ExperimentConfig::smoke_test();
    let dos = AttackKind::Dos;
    let rrs = c.run_attack(dos, MitigationKind::Rrs, 1);
    let bh = c.run_attack(dos, MitigationKind::BlockHammer512, 1);
    // Identical access counts; compare attacker wall-clock.
    assert_eq!(rrs.result.total_instructions, bh.result.total_instructions);
    let ratio = bh.result.cycles as f64 / rrs.result.cycles.max(1) as f64;
    assert!(
        ratio > 3.0,
        "BlockHammer DoS exposure should dwarf RRS's: ratio = {ratio}"
    );
}

#[test]
fn rit_lookup_latency_is_charged() {
    // §4.7: RRS adds a 4-cycle RIT lookup to every access. A compute-bound
    // workload barely notices; the run must stay within a percent or two.
    let c = cfg();
    let w = workload("exchange2_17"); // tiny footprint, compute bound
    let base = c.run_workload(&w, MitigationKind::None);
    let rrs = c.run_workload(&w, MitigationKind::Rrs);
    let norm = rrs.normalized_to(&base);
    assert!(norm > 0.9 && norm <= 1.01, "normalized = {norm}");
}

#[test]
fn swaps_per_epoch_track_hot_row_population() {
    // Figure 5's mechanism: more ACT-800+ rows -> more swaps per epoch.
    let c = cfg();
    let busy = c.run_workload(&workload("sphinx"), MitigationKind::Rrs); // 242 hot rows
    let quiet = c.run_workload(&workload("comm5"), MitigationKind::Rrs); // 1 hot row
    assert!(
        busy.stats.mean_swaps_per_epoch() > quiet.stats.mean_swaps_per_epoch(),
        "sphinx {} vs comm5 {}",
        busy.stats.mean_swaps_per_epoch(),
        quiet.stats.mean_swaps_per_epoch()
    );
}

#[test]
fn mix_workloads_run_end_to_end() {
    let mut c = ExperimentConfig::smoke_test().with_instructions(100_000);
    c.cores = 8;
    let mix = Workload::Mix(rrs::workloads::catalog::MIXES[0]);
    let r = c.run_workload(&mix, MitigationKind::Rrs);
    assert!(r.aggregate_ipc() > 0.0);
    assert_eq!(r.core_ipc.len(), 8);
    assert!(r.bit_flips.is_empty());
}
