#!/usr/bin/env bash
# Regenerates every table and figure of the paper into results/ — the
# equivalent of the original artifact's run_artifact.sh.
#
# Usage: ./regenerate.sh [SCALE] [INSTR]
#   SCALE  time-scale factor (default 100; must divide 800; 1 = the paper's
#          full-scale parameters — slower but exact)
#   INSTR  instructions per core for benign runs (default 6000000)
set -euo pipefail

SCALE="${1:-100}"
INSTR="${2:-6000000}"
OUT=results
mkdir -p "$OUT"

echo "building (release)..."
cargo build --release -p bench

run() {
    local name="$1"; shift
    echo "== $name =="
    cargo run -q --release -p bench --bin "$name" -- "$@" | tee "$OUT/$name.txt"
}

run table1
run table2
run table3 --scale "$SCALE" --instr "$INSTR" --workloads all
run table4 --validate
run table5
run table6 --scale "$SCALE" --instr "$INSTR" --workloads all
run table7 --scale "$SCALE" --epochs 2
run fig5  --scale "$SCALE" --instr "$INSTR" --workloads all --csv "$OUT/fig5.csv"
run fig6  --scale "$SCALE" --instr "$INSTR" --workloads all --csv "$OUT/fig6.csv"
run fig9
run fig10 --scale "$SCALE" --instr "$INSTR" --workloads 12
run fig11 --scale "$SCALE" --instr "$INSTR" --workloads all
run dos   --scale "$SCALE"
run security_sweep --workloads 6 --scale "$SCALE" --instr "$INSTR"
run tracker_ablation
run rowclone --scale "$SCALE" --instr "$INSTR" --workloads 8
run scheduler_ablation --scale "$SCALE" --instr "$INSTR" --workloads 6
run detector_study --scale "$SCALE" --instr "$INSTR" --workloads 10
run fullscale_attack
run duty_cycle

echo
echo "all outputs in $OUT/ — compare against EXPERIMENTS.md"
