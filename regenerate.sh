#!/usr/bin/env bash
# Regenerates every table and figure of the paper into results/ — the
# equivalent of the original artifact's run_artifact.sh.
#
# Everything simulation-driven executes through the campaign engine
# (rrs::campaign): cells run in parallel across the machine's cores and
# every finished cell is cached under results/ as <cell-id>.json, so an
# interrupted regeneration resumes where it stopped and figures sharing
# cells (e.g. the no-defense baselines behind table3/fig6/fig11) run them
# once. Delete results/*.json (or pass --force to a binary) to re-simulate.
#
# Usage: ./regenerate.sh [SCALE] [INSTR]
#   SCALE  time-scale factor (default 100; must divide 800; 1 = the paper's
#          full-scale parameters — slower but exact)
#   INSTR  instructions per core for benign runs (default 6000000)
set -euo pipefail

SCALE="${1:-100}"
INSTR="${2:-6000000}"
OUT=results
mkdir -p "$OUT"

echo "building (release)..."
cargo build --release -p bench -p rrs-cli

# Warm the shared cell cache through the campaign CLI: the full workload
# population under every defense the figures below need. Reruns of this
# script (and the individual binaries) then load these cells from disk.
echo "== warming campaign cache =="
cargo run -q --release -p rrs-cli -- campaign \
    --workloads all --defenses none,rrs,bh-512,bh-1k \
    --scale "$SCALE" --instr "$INSTR" --out "$OUT" --quiet \
    > "$OUT/campaign_warm.txt"

run() {
    local name="$1"; shift
    echo "== $name =="
    cargo run -q --release -p bench --bin "$name" -- --out "$OUT" "$@" | tee "$OUT/$name.txt"
}

run table1
run table2
run table3 --scale "$SCALE" --instr "$INSTR" --workloads all
run table4 --validate
run table5
run table6 --scale "$SCALE" --instr "$INSTR" --workloads all
run table7 --scale "$SCALE" --epochs 2
run fig5  --scale "$SCALE" --instr "$INSTR" --workloads all --csv "$OUT/fig5.csv"
run fig6  --scale "$SCALE" --instr "$INSTR" --workloads all --csv "$OUT/fig6.csv"
run fig9
run fig10 --scale "$SCALE" --instr "$INSTR" --workloads 12
run fig11 --scale "$SCALE" --instr "$INSTR" --workloads all
run dos   --scale "$SCALE"
run security_sweep --workloads 6 --scale "$SCALE" --instr "$INSTR"
run tracker_ablation
run rowclone --scale "$SCALE" --instr "$INSTR" --workloads 8
run scheduler_ablation --scale "$SCALE" --instr "$INSTR" --workloads 6
run detector_study --scale "$SCALE" --instr "$INSTR" --workloads 10
run fullscale_attack
run duty_cycle

echo
echo "all outputs in $OUT/ — compare against EXPERIMENTS.md"
